package serve

import (
	"time"

	"steppingnet/internal/infer"
	"steppingnet/internal/serve/cache"
	"steppingnet/internal/tensor"
)

// specRingSize bounds the speculative candidate ring: a handful of
// genuinely hot keys is all an idle window can usefully pre-climb,
// and a small ring keeps the hot-set snapshot (HotInputs) cheap.
const specRingSize = 16

// specCand is one speculative pre-climb candidate: a cache key whose
// stored walk sits below the top rung, a private copy of its input
// (the cached state alone cannot seed an engine — ImportState needs
// the input tensor, and a restart-warming walk needs it outright),
// and a hit count that ranks candidates hottest-first.
type specCand struct {
	key   cache.Key
	input []float64
	hits  int
}

// noteSpecCandidate records a sub-top-rung cache hit in the candidate
// ring: a repeat of this key is plausible, so finishing its climb
// during an idle window converts the next repeat into a full-ladder
// zero-MAC hit. The ring is maintained whenever the cache is armed —
// it doubles as the hot-input set the restart-warming flag persists —
// but only wakes the batch former when speculation is on. A known key
// just gets hotter; a new key fills a free slot or displaces the
// coldest one.
func (s *Server) noteSpecCandidate(k cache.Key, input []float64) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for i := range s.specRing {
		if s.specRing[i].key == k {
			s.specRing[i].hits++
			if s.cfg.Speculate {
				s.qcond.Signal()
			}
			return
		}
	}
	cand := specCand{key: k, input: append([]float64(nil), input...), hits: 1}
	if len(s.specRing) < specRingSize {
		s.specRing = append(s.specRing, cand)
	} else {
		cold := 0
		for i := range s.specRing {
			if s.specRing[i].hits < s.specRing[cold].hits {
				cold = i
			}
		}
		s.specRing[cold] = cand
	}
	if s.cfg.Speculate {
		s.qcond.Signal()
	}
}

// popSpeculativeLocked removes the hottest candidate from the ring
// and wraps it as a speculative pending for the worker pool. Callers
// hold qmu and have checked the ring is non-empty.
func (s *Server) popSpeculativeLocked() *pending {
	hot := 0
	for i := range s.specRing {
		if s.specRing[i].hits > s.specRing[hot].hits {
			hot = i
		}
	}
	cand := s.specRing[hot]
	last := len(s.specRing) - 1
	s.specRing[hot] = s.specRing[last]
	s.specRing[last] = specCand{}
	s.specRing = s.specRing[:last]
	return &pending{input: cand.input, key: cand.key, hasKey: true, speculative: true}
}

// runSpeculative executes one speculative pre-climb: seed the engine
// from the candidate's cached state and climb exactly one rung, then
// offer the widened entry back. Preemption is checked up front — a
// real request admitted between the former's pop and this worker
// picking the job up wins the engine, and the candidate goes back on
// the ring. The one-rung bound makes every speculative occupation of
// a worker no longer than a single ladder step, so real traffic never
// waits more than one rung boundary. The offer goes through
// PutIfGeneration under the generation observed at the peek: a model
// or calibration swap during the climb must not resurrect pre-swap
// state under the new generation. Speculative MACs are metered
// separately (Snapshot.SpeculativeMACs) and never against requests.
func (s *Server) runSpeculative(e *infer.Engine, bufs map[int]*tensor.Tensor, p *pending) {
	s.qmu.Lock()
	busy := s.qtotal > 0
	s.qmu.Unlock()
	if busy {
		s.noteSpecCandidate(p.key, p.input) // preempted: keep the candidate
		return
	}
	ent, ok := s.cache.Peek(p.key)
	// A widened entry (state narrower than its logits rung) is skipped:
	// one-rung offers below the published rung cannot persist, so the
	// climb would be thrown away.
	if !ok || ent.State == nil || ent.Subnet >= s.n || ent.State.Subnet != ent.Subnet {
		return
	}
	gen := s.cache.Generation()
	x := bufs[1]
	if x == nil {
		x = tensor.New(1, s.inC, s.inH, s.inW)
		bufs[1] = x
	}
	copy(x.Data(), p.input)
	e.Workers = s.cfg.EngineWorkers
	if err := e.ImportState(x, ent.State); err != nil {
		return // structurally stale state: let the LRU age it out
	}
	next := ent.Subnet + 1
	out, macs, err := e.Step(next)
	if err != nil {
		return
	}
	s.speculated.Add(1)
	s.specMACs.Add(macs)
	st, err := e.ExportState(0)
	if err != nil {
		return
	}
	logits := make([]float64, s.classes)
	copy(logits, out.Data()[:s.classes])
	if s.cache.PutIfGeneration(p.key, &cache.Entry{Subnet: next, Logits: logits, State: st}, gen) && next < s.n {
		// Still below the top: requeue so further idle windows keep
		// climbing toward a full-ladder entry.
		s.noteSpecCandidate(p.key, p.input)
	}
}

// HotInputs snapshots the candidate ring's inputs, hottest first — the
// working set a draining server persists (cmd/stepserve's restart
// warming) so its successor can pre-climb the same keys before taking
// traffic. The returned slices are private copies.
func (s *Server) HotInputs() [][]float64 {
	s.qmu.Lock()
	ring := append([]specCand(nil), s.specRing...)
	s.qmu.Unlock()
	for i := 1; i < len(ring); i++ {
		for j := i; j > 0 && ring[j].hits > ring[j-1].hits; j-- {
			ring[j], ring[j-1] = ring[j-1], ring[j]
		}
	}
	out := make([][]float64, len(ring))
	for i, c := range ring {
		out[i] = append([]float64(nil), c.input...)
	}
	return out
}

// Prewarm walks each input up the ladder through the normal Submit
// path (at the highest priority class, under the given deadline; 0
// means Config.DefaultDeadline) so the cache holds their reached
// rungs before real traffic arrives — the restart-warming half of the
// candidate ring: a successor process replays the hot set its
// predecessor persisted. It returns how many inputs were served.
// Mis-sized or rejected inputs are skipped rather than aborting — a
// persisted hot set from an older model must not block startup.
func (s *Server) Prewarm(inputs [][]float64, deadline time.Duration) int {
	served := 0
	for _, in := range inputs {
		_, err := s.Submit(Request{Input: in, Deadline: deadline, Priority: s.priorities - 1})
		if err == nil {
			served++
		}
	}
	return served
}
