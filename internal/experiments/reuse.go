package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"steppingnet/internal/infer"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// ReuseStep records one incremental expansion of the anytime engine.
type ReuseStep struct {
	Subnet      int
	StepMACs    int64 // MACs the engine actually executed
	SubnetMACs  int64 // MACs of running this subnet from scratch
	OutputMatch bool  // incremental output equals full forward
}

// ReuseResult audits the paper's central systems claim (§II, §III):
// expanding from subnet s−1 to s costs only the MAC delta, never a
// recomputation, and produces bit-identical outputs.
type ReuseResult struct {
	Scale      Scale
	Model      string
	Steps      []ReuseStep
	TotalMACs  int64 // incremental total over all steps
	ScratchSum int64 // what recomputing every subnet from scratch would cost
}

// Reuse constructs a SteppingNet on the first workload and walks the
// anytime engine up through every subnet, recording MAC accounting
// and output equality.
func Reuse(sc Scale) (*ReuseResult, error) {
	w := Workloads(sc)[0]
	r, err := runStepping(w, sc, false, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: reuse: %w", err)
	}
	model := r.StudentNet
	n := len(w.Budgets)

	x := tensor.New(1, w.Data.C, w.Data.H, w.Data.W)
	x.FillNormal(tensor.NewRNG(sc.Seed^0x5E0), 0, 1)
	e := infer.NewEngine(model.Net)
	defer e.Close()
	e.Reset(x)

	res := &ReuseResult{Scale: sc, Model: r.Model}
	for s := 1; s <= n; s++ {
		out, macs, err := e.Step(s)
		if err != nil {
			return nil, err
		}
		full := model.Net.Forward(x, nn.Eval(s))
		res.Steps = append(res.Steps, ReuseStep{
			Subnet:      s,
			StepMACs:    macs,
			SubnetMACs:  model.Net.MACs(s),
			OutputMatch: tensor.Equal(out, full, 1e-9),
		})
		res.ScratchSum += model.Net.MACs(s)
	}
	res.TotalMACs = e.TotalMACs()
	return res, nil
}

// Render prints the audit table and the headline savings figure.
func (r *ReuseResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Computational-reuse audit (%s, scale=%s)\n", r.Model, r.Scale.Name)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "step\tsubnet\tincremental MACs\tfrom-scratch MACs\toutputs equal")
	for _, s := range r.Steps {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\n", s.Subnet, s.Subnet, s.StepMACs, s.SubnetMACs, s.OutputMatch)
	}
	tw.Flush()
	if r.ScratchSum > 0 {
		fmt.Fprintf(&b, "anytime walk 1→%d: %d MACs incremental vs %d recomputing every subnet (%.1f%% saved)\n",
			len(r.Steps), r.TotalMACs, r.ScratchSum,
			100*(1-float64(r.TotalMACs)/float64(r.ScratchSum)))
	}
	return b.String()
}

// Verified reports whether every step matched the full forward — the
// pass/fail of the audit.
func (r *ReuseResult) Verified() bool {
	for _, s := range r.Steps {
		if !s.OutputMatch {
			return false
		}
	}
	return len(r.Steps) > 0
}
