package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"steppingnet/internal/core"
)

// TableIResult holds one reproduction of Table I: per network, the
// original accuracy and the (A_i, M_i/M_t) pairs of the four subnets.
type TableIResult struct {
	Scale Scale
	Rows  []*core.Result
}

// TableI runs the full SteppingNet pipeline on every Table-I
// workload.
func TableI(sc Scale) (*TableIResult, error) {
	res := &TableIResult{Scale: sc}
	for _, w := range Workloads(sc) {
		r, err := runStepping(w, sc, false, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", w.Name, err)
		}
		res.Rows = append(res.Rows, r)
	}
	return res, nil
}

// runStepping executes the pipeline for one workload with the shared
// scale parameters.
func runStepping(w Workload, sc Scale, noDistill, noSuppression bool) (*core.Result, error) {
	return core.Run(core.PipelineOptions{
		Build:     w.Build,
		Data:      w.Data,
		Expansion: w.Expansion,
		Config: core.Config{
			Subnets:        len(w.Budgets),
			Budgets:        w.Budgets,
			Iterations:     sc.Iterations,
			BatchesPerIter: sc.BatchesPerIter,
			BatchSize:      sc.BatchSize,
			TeacherEpochs:  sc.TeacherEpochs,
			DistillEpochs:  sc.DistillEpochs,
			Seed:           sc.Seed,
		},
		DisableDistill:     noDistill,
		DisableSuppression: noSuppression,
	})
}

// Render formats the result in the layout of the paper's Table I.
func (t *TableIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Results of SteppingNet (scale=%s)\n", t.Scale.Name)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Network\tOrig.Acc\tA1\tM1/Mt\tA2\tM2/Mt\tA3\tM3/Mt\tA4\tM4/Mt")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%.2f%%", r.Model, 100*r.OrigAccuracy)
		for _, s := range r.Stats {
			fmt.Fprintf(tw, "\t%.2f%%\t%.2f%%", 100*s.Accuracy, 100*s.MACFrac)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}
