package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"steppingnet/internal/core"
)

// Fig7Series is the subnet curve of one expansion ratio.
type Fig7Series struct {
	Expansion float64
	Stats     []core.SubnetStat
}

// Fig7Net is one subplot: all expansion ratios of one network.
type Fig7Net struct {
	Name   string
	Series []Fig7Series
}

// Fig7Result reproduces Fig. 7: accuracy vs MACs for expansion
// ratios 1.0–2.0 on LeNet-3C1L and LeNet-5 (the paper's two
// subplots).
type Fig7Result struct {
	Scale Scale
	Nets  []Fig7Net
}

// Fig7 sweeps the expansion ratio over the first two Table-I
// workloads.
func Fig7(sc Scale) (*Fig7Result, error) {
	res := &Fig7Result{Scale: sc}
	for _, w := range Workloads(sc)[:2] { // LeNet-3C1L, LeNet-5
		net := Fig7Net{Name: w.Name}
		for _, exp := range sc.Expansions {
			wx := w
			wx.Expansion = exp
			r, err := runStepping(wx, sc, false, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 %s ×%.1f: %w", w.Name, exp, err)
			}
			net.Series = append(net.Series, Fig7Series{Expansion: exp, Stats: r.Stats})
		}
		res.Nets = append(res.Nets, net)
	}
	return res, nil
}

// Render prints one table per network: rows are subnets, columns are
// expansion ratios.
func (f *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7: Accuracy comparison with different expansion ratios (scale=%s)\n", f.Scale.Name)
	for _, net := range f.Nets {
		fmt.Fprintf(&b, "\n%s\n", net.Name)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "subnet\t#MAC%")
		for _, s := range net.Series {
			fmt.Fprintf(tw, "\t×%.1f Acc", s.Expansion)
		}
		fmt.Fprintln(tw)
		if len(net.Series) == 0 {
			continue
		}
		for i := range net.Series[0].Stats {
			fmt.Fprintf(tw, "%d\t%.1f%%", i+1, 100*net.Series[0].Stats[i].MACFrac)
			for _, s := range net.Series {
				fmt.Fprintf(tw, "\t%.2f%%", 100*s.Stats[i].Accuracy)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return b.String()
}

// MeanAccuracy returns the average subnet accuracy of one series,
// the summary statistic used to compare expansion ratios.
func (s Fig7Series) MeanAccuracy() float64 {
	if len(s.Stats) == 0 {
		return 0
	}
	total := 0.0
	for _, st := range s.Stats {
		total += st.Accuracy
	}
	return total / float64(len(s.Stats))
}
