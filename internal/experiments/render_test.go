package experiments

import (
	"strings"
	"testing"

	"steppingnet/internal/baselines"
	"steppingnet/internal/core"
)

func sampleFig6() *Fig6Result {
	return &Fig6Result{
		Scale: Tiny(),
		Nets: []Fig6Net{{
			Name: "LeNet-5/Cifar10",
			Curves: []Fig6Curve{
				{Method: "SteppingNet", Points: []baselines.OperatingPoint{
					{Subnet: 1, MACs: 100, MACFrac: 0.10, Accuracy: 0.50},
					{Subnet: 2, MACs: 300, MACFrac: 0.30, Accuracy: 0.65},
				}},
				{Method: "Slimmable Net.", Points: []baselines.OperatingPoint{
					{Subnet: 1, MACs: 100, MACFrac: 0.10, Accuracy: 0.45},
					{Subnet: 2, MACs: 300, MACFrac: 0.30, Accuracy: 0.60},
				}},
				{Method: "Any-width Net.", Points: []baselines.OperatingPoint{
					{Subnet: 1, MACs: 100, MACFrac: 0.10, Accuracy: 0.55},
				}},
			},
		}},
	}
}

func TestFig6RenderLayout(t *testing.T) {
	out := sampleFig6().Render()
	for _, want := range []string{"Fig. 6", "LeNet-5/Cifar10", "SteppingNet", "Slimmable Net.", "Any-width Net.", "65.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWinsAtMatchedMACs(t *testing.T) {
	wins, comparisons := sampleFig6().WinsAtMatchedMACs()
	// Stepping beats slimmable at both points (2 wins of 2) and
	// loses to anywidth's single point (0 of 1).
	if comparisons != 3 || wins != 2 {
		t.Fatalf("wins=%d comparisons=%d", wins, comparisons)
	}
}

func TestFig8RenderLayout(t *testing.T) {
	r := &Fig8Result{
		Scale: Tiny(),
		Nets: []Fig8Net{{
			Name: "LeNet-3C1L/Cifar10",
			Variants: map[Fig8Variant][]core.SubnetStat{
				VariantFull:          {{Subnet: 1, Accuracy: 0.6}, {Subnet: 2, Accuracy: 0.7}},
				VariantNoSuppression: {{Subnet: 1, Accuracy: 0.5}, {Subnet: 2, Accuracy: 0.65}},
				VariantNoDistill:     {{Subnet: 1, Accuracy: 0.55}, {Subnet: 2, Accuracy: 0.66}},
			},
		}},
	}
	out := r.Render()
	for _, want := range []string{"Fig. 8", "w/o weight suppression", "w/o knowledge distillation", "SteppingNet", "70.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReuseRenderAndVerified(t *testing.T) {
	r := &ReuseResult{
		Scale: Tiny(), Model: "LeNet-3C1L",
		Steps: []ReuseStep{
			{Subnet: 1, StepMACs: 10, SubnetMACs: 10, OutputMatch: true},
			{Subnet: 2, StepMACs: 5, SubnetMACs: 15, OutputMatch: true},
		},
		TotalMACs: 15, ScratchSum: 25,
	}
	if !r.Verified() {
		t.Fatal("should verify")
	}
	if !strings.Contains(r.Render(), "40.0% saved") {
		t.Fatalf("render:\n%s", r.Render())
	}
	r.Steps[1].OutputMatch = false
	if r.Verified() {
		t.Fatal("must fail when a step mismatches")
	}
	if (&ReuseResult{}).Verified() {
		t.Fatal("empty result must not verify")
	}
}
