package experiments

import (
	"strings"
	"testing"
)

func TestWorkloadsMatchPaperParameters(t *testing.T) {
	ws := Workloads(Tiny())
	if len(ws) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(ws))
	}
	wantBudgets := [][]float64{
		{0.10, 0.30, 0.50, 0.85},
		{0.15, 0.30, 0.60, 0.85},
		{0.20, 0.40, 0.50, 0.70},
	}
	wantExp := []float64{1.8, 2.0, 1.8}
	for i, w := range ws {
		for j, b := range w.Budgets {
			if b != wantBudgets[i][j] {
				t.Fatalf("%s budgets %v", w.Name, w.Budgets)
			}
		}
		if w.Expansion != wantExp[i] {
			t.Fatalf("%s expansion %g", w.Name, w.Expansion)
		}
	}
}

func TestScalesAreOrdered(t *testing.T) {
	tiny, quick, full := Tiny(), Quick(), Full()
	if !(tiny.TrainSamples < quick.TrainSamples && quick.TrainSamples < full.TrainSamples) {
		t.Fatal("scales must grow")
	}
	if tiny.Name == quick.Name || quick.Name == full.Name {
		t.Fatal("scale names must differ")
	}
}

func TestTableITiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	res, err := TableI(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.Construction.BudgetsMet {
			t.Fatalf("%s budgets not met: %v", r.Model, r.Construction.FinalMACs)
		}
		for i := 1; i < len(r.Stats); i++ {
			if r.Stats[i].MACs < r.Stats[i-1].MACs {
				t.Fatalf("%s MACs not monotone", r.Model)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"Table I", "LeNet-3C1L", "LeNet-5", "VGG-16", "M4/Mt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig7TinySubsetOfWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	sc := Tiny()
	sc.Expansions = []float64{1.0, 1.5}
	res, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nets) != 2 {
		t.Fatalf("fig7 nets %d", len(res.Nets))
	}
	for _, n := range res.Nets {
		if len(n.Series) != 2 {
			t.Fatalf("%s series %d", n.Name, len(n.Series))
		}
		for _, s := range n.Series {
			if m := s.MeanAccuracy(); m < 0 || m > 1 {
				t.Fatalf("mean accuracy %g", m)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 7") || !strings.Contains(out, "×1.0") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestReuseTinyVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	res, err := Reuse(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified() {
		t.Fatalf("reuse audit failed: %+v", res.Steps)
	}
	// Incremental walk must be cheaper than from-scratch sum.
	if res.TotalMACs >= res.ScratchSum {
		t.Fatalf("no savings: %d vs %d", res.TotalMACs, res.ScratchSum)
	}
	if !strings.Contains(res.Render(), "saved") {
		t.Fatal("render missing savings line")
	}
}
