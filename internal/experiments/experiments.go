// Package experiments regenerates every table and figure of the
// paper's evaluation (§IV) on the synthetic workloads: Table I
// (per-subnet accuracy and MAC share), Fig. 6 (SteppingNet vs the
// slimmable and any-width baselines), Fig. 7 (expansion-ratio sweep),
// Fig. 8 (ablation of LR suppression and knowledge distillation),
// plus a computational-reuse audit backing the §II/§III reuse claims.
// Each experiment returns a structured result with a Render method
// that prints the same rows/series the paper reports.
package experiments

import (
	"steppingnet/internal/data"
	"steppingnet/internal/models"
)

// Scale selects the problem size. The paper's absolute scale (50k
// CIFAR images, 300 construction iterations, GPU-days) is far beyond
// a CPU-only reproduction; Scale lets the same harness run as a
// seconds-long benchmark (Quick), a minutes-long CLI run (Full), or
// a CI-sized smoke test (Tiny) without changing any algorithmic
// parameter that the paper fixes (α growth 1.5, β 0.9, γ 0.4, prune
// threshold 1e-5, budget fractions, expansion ratios).
type Scale struct {
	Name         string
	TrainSamples int
	TestSamples  int
	// Classes10 / Classes100 are the class counts of the synthetic
	// stand-ins for Cifar10 / Cifar100.
	Classes10, Classes100 int
	ImgHW                 int

	TeacherEpochs  int
	DistillEpochs  int
	Iterations     int // construction iterations N_t
	BatchesPerIter int // m
	BaselineEpochs int
	BatchSize      int

	// Expansions is the Fig. 7 sweep (paper: 1.0–2.0 in steps of 0.2).
	Expansions []float64
	Seed       uint64
}

// Tiny is the CI/unit-test scale: a couple of seconds in total.
func Tiny() Scale {
	return Scale{
		Name: "tiny", TrainSamples: 192, TestSamples: 96,
		Classes10: 4, Classes100: 6, ImgHW: 8,
		TeacherEpochs: 2, DistillEpochs: 2, Iterations: 8, BatchesPerIter: 1,
		BaselineEpochs: 2, BatchSize: 16,
		Expansions: []float64{1.0, 1.5, 2.0}, Seed: 1,
	}
}

// Quick is the benchmark scale: each experiment finishes in seconds
// to a few minutes while preserving every qualitative trend.
func Quick() Scale {
	return Scale{
		Name: "quick", TrainSamples: 1536, TestSamples: 512,
		Classes10: 10, Classes100: 15, ImgHW: 12,
		TeacherEpochs: 10, DistillEpochs: 7, Iterations: 16, BatchesPerIter: 2,
		BaselineEpochs: 10, BatchSize: 32,
		Expansions: []float64{1.0, 1.4, 1.8}, Seed: 1,
	}
}

// Full is the CLI scale used to produce EXPERIMENTS.md.
func Full() Scale {
	return Scale{
		Name: "full", TrainSamples: 2048, TestSamples: 768,
		Classes10: 10, Classes100: 25, ImgHW: 12,
		TeacherEpochs: 10, DistillEpochs: 8, Iterations: 24, BatchesPerIter: 2,
		BaselineEpochs: 10, BatchSize: 32,
		Expansions: []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}, Seed: 1,
	}
}

// Workload couples a network topology with its dataset, budgets and
// expansion ratio as in Table I.
type Workload struct {
	Name      string
	Build     models.Builder
	Data      data.Config
	Budgets   []float64
	Expansion float64
}

// Workloads returns the three Table-I rows at the given scale:
// LeNet-3C1L / synth-Cifar10, LeNet-5 / synth-Cifar10 and VGG-16 /
// synth-Cifar100, with the paper's budget fractions and expansion
// ratios (§IV).
func Workloads(sc Scale) []Workload {
	cifar10 := data.Config{
		Name: "synth-cifar10", Classes: sc.Classes10, C: 3, H: sc.ImgHW, W: sc.ImgHW,
		Train: sc.TrainSamples, Test: sc.TestSamples, Seed: sc.Seed + 10, LabelNoise: 0.04,
	}
	cifar100 := data.Config{
		Name: "synth-cifar100", Classes: sc.Classes100, C: 3, H: sc.ImgHW, W: sc.ImgHW,
		Train: sc.TrainSamples, Test: sc.TestSamples, Seed: sc.Seed + 100, LabelNoise: 0.04,
	}
	return []Workload{
		{
			Name: "LeNet-3C1L/Cifar10", Build: models.LeNet3C1L, Data: cifar10,
			Budgets: []float64{0.10, 0.30, 0.50, 0.85}, Expansion: 1.8,
		},
		{
			Name: "LeNet-5/Cifar10", Build: models.LeNet5, Data: cifar10,
			Budgets: []float64{0.15, 0.30, 0.60, 0.85}, Expansion: 2.0,
		},
		{
			Name: "VGG-16/Cifar100", Build: models.VGG16, Data: cifar100,
			Budgets: []float64{0.20, 0.40, 0.50, 0.70}, Expansion: 1.8,
		},
	}
}
