package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"steppingnet/internal/core"
)

// Fig8Variant labels one ablation configuration.
type Fig8Variant string

// The three bars of each Fig. 8 group.
const (
	VariantFull          Fig8Variant = "SteppingNet"
	VariantNoSuppression Fig8Variant = "w/o weight suppression"
	VariantNoDistill     Fig8Variant = "w/o knowledge distillation"
)

// Fig8Net is one subplot: per-subnet accuracy for each variant of
// one network.
type Fig8Net struct {
	Name     string
	Variants map[Fig8Variant][]core.SubnetStat
}

// Fig8Result reproduces Fig. 8: the ablation of learning-rate
// suppression and knowledge distillation on LeNet-3C1L and LeNet-5.
type Fig8Result struct {
	Scale Scale
	Nets  []Fig8Net
}

// Fig8 runs the three variants on the two LeNet workloads.
func Fig8(sc Scale) (*Fig8Result, error) {
	res := &Fig8Result{Scale: sc}
	for _, w := range Workloads(sc)[:2] {
		net := Fig8Net{Name: w.Name, Variants: map[Fig8Variant][]core.SubnetStat{}}
		type cfg struct {
			v                Fig8Variant
			noKD, noSuppress bool
		}
		for _, c := range []cfg{
			{VariantFull, false, false},
			{VariantNoSuppression, false, true},
			{VariantNoDistill, true, false},
		} {
			r, err := runStepping(w, sc, c.noKD, c.noSuppress)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 %s %s: %w", w.Name, c.v, err)
			}
			net.Variants[c.v] = r.Stats
		}
		res.Nets = append(res.Nets, net)
	}
	return res, nil
}

// Render prints one table per network: rows are subnets, columns the
// three variants — the textual form of the paper's bar groups.
func (f *Fig8Result) Render() string {
	order := []Fig8Variant{VariantNoSuppression, VariantNoDistill, VariantFull}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: Accuracy with and without suppression of weight update and knowledge distillation (scale=%s)\n", f.Scale.Name)
	for _, net := range f.Nets {
		fmt.Fprintf(&b, "\n%s\n", net.Name)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "subnet")
		for _, v := range order {
			fmt.Fprintf(tw, "\t%s", v)
		}
		fmt.Fprintln(tw)
		n := len(net.Variants[VariantFull])
		for i := 0; i < n; i++ {
			fmt.Fprintf(tw, "%d", i+1)
			for _, v := range order {
				stats := net.Variants[v]
				if i < len(stats) {
					fmt.Fprintf(tw, "\t%.2f%%", 100*stats[i].Accuracy)
				} else {
					fmt.Fprint(tw, "\t")
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return b.String()
}
