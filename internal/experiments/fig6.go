package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"steppingnet/internal/baselines"
	"steppingnet/internal/baselines/anywidth"
	"steppingnet/internal/baselines/slimmable"
	"steppingnet/internal/core"
)

// Fig6Curve is one method's accuracy-vs-MAC series for one network.
type Fig6Curve struct {
	Method string
	Points []baselines.OperatingPoint
}

// Fig6Net groups the three curves of one subplot.
type Fig6Net struct {
	Name   string
	Curves []Fig6Curve
}

// Fig6Result reproduces Fig. 6: for each of the three networks, the
// accuracy of SteppingNet, the slimmable network and the any-width
// network at matched MAC levels.
type Fig6Result struct {
	Scale Scale
	Nets  []Fig6Net
}

// Fig6 runs all three methods on every workload. All methods are
// evaluated at the workload's budget fractions so the comparison is
// at equal computational cost, which is the paper's x-axis.
func Fig6(sc Scale) (*Fig6Result, error) {
	res := &Fig6Result{Scale: sc}
	for _, w := range Workloads(sc) {
		net := Fig6Net{Name: w.Name}

		sr, err := runStepping(w, sc, false, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s stepping: %w", w.Name, err)
		}
		net.Curves = append(net.Curves, Fig6Curve{Method: "SteppingNet", Points: steppingPoints(sr)})

		bcfg := baselines.Config{
			Subnets: len(w.Budgets), Budgets: w.Budgets,
			Epochs: sc.BaselineEpochs, BatchSize: sc.BatchSize, Seed: sc.Seed,
		}
		slim, err := slimmable.Run(w.Build, w.Data, bcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s slimmable: %w", w.Name, err)
		}
		net.Curves = append(net.Curves, Fig6Curve{Method: "Slimmable Net.", Points: slim.Points})

		aw, err := anywidth.Run(w.Build, w.Data, bcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s anywidth: %w", w.Name, err)
		}
		net.Curves = append(net.Curves, Fig6Curve{Method: "Any-width Net.", Points: aw.Points})

		res.Nets = append(res.Nets, net)
	}
	return res, nil
}

func steppingPoints(r *core.Result) []baselines.OperatingPoint {
	pts := make([]baselines.OperatingPoint, 0, len(r.Stats))
	for _, s := range r.Stats {
		pts = append(pts, baselines.OperatingPoint{
			Subnet: s.Subnet, MACs: s.MACs, MACFrac: s.MACFrac, Accuracy: s.Accuracy,
		})
	}
	return pts
}

// Render prints each subplot as a series table (one row per MAC
// level, one column per method), the textual equivalent of the
// paper's three line charts.
func (f *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: Comparison with the any-width network and the slimmable network (scale=%s)\n", f.Scale.Name)
	for _, net := range f.Nets {
		fmt.Fprintf(&b, "\n%s\n", net.Name)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "point")
		for _, c := range net.Curves {
			fmt.Fprintf(tw, "\t%s #MAC%%\t%s Acc", c.Method, c.Method)
		}
		fmt.Fprintln(tw)
		n := 0
		for _, c := range net.Curves {
			if len(c.Points) > n {
				n = len(c.Points)
			}
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(tw, "%d", i+1)
			for _, c := range net.Curves {
				if i < len(c.Points) {
					p := c.Points[i]
					fmt.Fprintf(tw, "\t%.1f%%\t%.2f%%", 100*p.MACFrac, 100*p.Accuracy)
				} else {
					fmt.Fprint(tw, "\t\t")
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return b.String()
}

// WinsAtMatchedMACs counts, over all nets and MAC levels, how often
// SteppingNet's accuracy is at least each baseline's. Used by tests
// and EXPERIMENTS.md to state the paper's headline claim
// quantitatively.
func (f *Fig6Result) WinsAtMatchedMACs() (wins, comparisons int) {
	for _, net := range f.Nets {
		var stepping []baselines.OperatingPoint
		for _, c := range net.Curves {
			if c.Method == "SteppingNet" {
				stepping = c.Points
			}
		}
		for _, c := range net.Curves {
			if c.Method == "SteppingNet" {
				continue
			}
			for i, p := range c.Points {
				if i >= len(stepping) {
					break
				}
				comparisons++
				if stepping[i].Accuracy >= p.Accuracy {
					wins++
				}
			}
		}
	}
	return wins, comparisons
}
