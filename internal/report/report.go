// Package report exports experiment results as CSV and JSON so that
// downstream tooling (plotting scripts, dashboards, regression
// tracking) can consume the reproduction's numbers without parsing
// rendered text tables.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"steppingnet/internal/baselines"
	"steppingnet/internal/core"
	"steppingnet/internal/experiments"
)

// WriteJSON marshals any experiment result with indentation.
func WriteJSON(w io.Writer, result any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

// TableICSV writes one row per (network, subnet): network, orig
// accuracy, subnet index, MACs, MAC fraction, accuracy.
func TableICSV(w io.Writer, t *experiments.TableIResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"network", "orig_accuracy", "subnet", "macs", "mac_frac", "accuracy"}); err != nil {
		return err
	}
	for _, row := range t.Rows {
		for _, s := range row.Stats {
			rec := []string{
				row.Model,
				f(row.OrigAccuracy),
				strconv.Itoa(s.Subnet),
				strconv.FormatInt(s.MACs, 10),
				f(s.MACFrac),
				f(s.Accuracy),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig6CSV writes one row per (network, method, point).
func Fig6CSV(w io.Writer, r *experiments.Fig6Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"network", "method", "point", "macs", "mac_frac", "accuracy"}); err != nil {
		return err
	}
	for _, net := range r.Nets {
		for _, c := range net.Curves {
			for _, p := range c.Points {
				if err := cw.Write([]string{
					net.Name, c.Method, strconv.Itoa(p.Subnet),
					strconv.FormatInt(p.MACs, 10), f(p.MACFrac), f(p.Accuracy),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig7CSV writes one row per (network, expansion, subnet).
func Fig7CSV(w io.Writer, r *experiments.Fig7Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"network", "expansion", "subnet", "macs", "mac_frac", "accuracy"}); err != nil {
		return err
	}
	for _, net := range r.Nets {
		for _, series := range net.Series {
			for _, s := range series.Stats {
				if err := cw.Write([]string{
					net.Name, f(series.Expansion), strconv.Itoa(s.Subnet),
					strconv.FormatInt(s.MACs, 10), f(s.MACFrac), f(s.Accuracy),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig8CSV writes one row per (network, variant, subnet).
func Fig8CSV(w io.Writer, r *experiments.Fig8Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"network", "variant", "subnet", "accuracy"}); err != nil {
		return err
	}
	order := []experiments.Fig8Variant{
		experiments.VariantFull,
		experiments.VariantNoSuppression,
		experiments.VariantNoDistill,
	}
	for _, net := range r.Nets {
		for _, v := range order {
			for _, s := range net.Variants[v] {
				if err := cw.Write([]string{net.Name, string(v), strconv.Itoa(s.Subnet), f(s.Accuracy)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CurveCSV writes a generic baseline operating curve.
func CurveCSV(w io.Writer, method string, pts []baselines.OperatingPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "point", "macs", "mac_frac", "accuracy"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			method, strconv.Itoa(p.Subnet),
			strconv.FormatInt(p.MACs, 10), f(p.MACFrac), f(p.Accuracy),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ResultCSV writes one pipeline result (the CLI's output) as CSV.
func ResultCSV(w io.Writer, r *core.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "orig_accuracy", "ref_macs", "expansion", "subnet", "macs", "mac_frac", "accuracy"}); err != nil {
		return err
	}
	for _, s := range r.Stats {
		if err := cw.Write([]string{
			r.Model, f(r.OrigAccuracy), strconv.FormatInt(r.RefMACs, 10), f(r.Expansion),
			strconv.Itoa(s.Subnet), strconv.FormatInt(s.MACs, 10), f(s.MACFrac), f(s.Accuracy),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.6f", v) }
