package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"steppingnet/internal/baselines"
	"steppingnet/internal/core"
	"steppingnet/internal/experiments"
)

func sampleTableI() *experiments.TableIResult {
	return &experiments.TableIResult{
		Scale: experiments.Tiny(),
		Rows: []*core.Result{
			{
				Model: "LeNet-5", OrigAccuracy: 0.75, RefMACs: 1000, Expansion: 2.0,
				Stats: []core.SubnetStat{
					{Subnet: 1, MACs: 150, MACFrac: 0.15, Accuracy: 0.52},
					{Subnet: 2, MACs: 300, MACFrac: 0.30, Accuracy: 0.60},
				},
			},
		},
	}
}

func TestTableICSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := TableICSV(&buf, sampleTableI()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 subnets
		t.Fatalf("rows %d", len(recs))
	}
	if recs[0][0] != "network" || recs[1][0] != "LeNet-5" || recs[2][2] != "2" {
		t.Fatalf("content %v", recs)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleTableI()); err != nil {
		t.Fatal(err)
	}
	var back experiments.TableIResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0].Model != "LeNet-5" {
		t.Fatalf("round trip %+v", back)
	}
}

func TestFig6CSV(t *testing.T) {
	r := &experiments.Fig6Result{
		Nets: []experiments.Fig6Net{{
			Name: "LeNet-5/Cifar10",
			Curves: []experiments.Fig6Curve{{
				Method: "SteppingNet",
				Points: []baselines.OperatingPoint{{Subnet: 1, MACs: 100, MACFrac: 0.1, Accuracy: 0.5}},
			}},
		}},
	}
	var buf bytes.Buffer
	if err := Fig6CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SteppingNet") {
		t.Fatal(buf.String())
	}
}

func TestFig7CSV(t *testing.T) {
	r := &experiments.Fig7Result{
		Nets: []experiments.Fig7Net{{
			Name: "LeNet-5/Cifar10",
			Series: []experiments.Fig7Series{{
				Expansion: 1.4,
				Stats:     []core.SubnetStat{{Subnet: 1, MACs: 10, MACFrac: 0.1, Accuracy: 0.4}},
			}},
		}},
	}
	var buf bytes.Buffer
	if err := Fig7CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.400000") {
		t.Fatal(buf.String())
	}
}

func TestFig8CSV(t *testing.T) {
	r := &experiments.Fig8Result{
		Nets: []experiments.Fig8Net{{
			Name: "LeNet-5/Cifar10",
			Variants: map[experiments.Fig8Variant][]core.SubnetStat{
				experiments.VariantFull:          {{Subnet: 1, Accuracy: 0.6}},
				experiments.VariantNoDistill:     {{Subnet: 1, Accuracy: 0.5}},
				experiments.VariantNoSuppression: {{Subnet: 1, Accuracy: 0.55}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := Fig8CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SteppingNet", "w/o knowledge distillation", "w/o weight suppression"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCurveAndResultCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := CurveCSV(&buf, "anywidth", []baselines.OperatingPoint{{Subnet: 2, MACs: 5, MACFrac: 0.05, Accuracy: 0.3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "anywidth,2,5") {
		t.Fatal(buf.String())
	}
	buf.Reset()
	res := sampleTableI().Rows[0]
	if err := ResultCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	recs, _ := csv.NewReader(&buf).ReadAll()
	if len(recs) != 3 {
		t.Fatalf("rows %d", len(recs))
	}
}
