// Package slimmable implements the slimmable-network baseline (Yu et
// al., ICLR'19; reference [10] of the paper). Subnets are prefix
// slices of every layer with *full connectivity inside the prefix*
// (nn.RuleShared), so a larger subnet changes the inputs of units the
// smaller subnet computed — intermediate results cannot be reused and
// every layer carries one BatchNorm parameter set per mode (paper
// §II and Fig. 1a).
package slimmable

import (
	"fmt"

	"steppingnet/internal/baselines"
	"steppingnet/internal/data"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
)

// Result is a trained slimmable network with its operating curve.
type Result struct {
	Model  *models.Model
	Widths []float64
	Points []baselines.OperatingPoint
}

// Run builds, calibrates, jointly trains and evaluates a slimmable
// network on the given workload.
func Run(build models.Builder, dcfg data.Config, cfg baselines.Config) (*Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	train, test, err := data.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	mo := models.Options{
		Classes: dcfg.Classes, InC: dcfg.C, InH: dcfg.H, InW: dcfg.W,
		Subnets: cfg.Subnets + 1, // +1 slot parks unused units
		Rule:    nn.RuleShared, BatchNorm: true, Seed: cfg.Seed,
	}
	model := build(mo)
	refOpts := mo
	refOpts.Subnets = 1
	refOpts.BatchNorm = false
	refMACs := models.ReferenceMACs(build, refOpts)

	widths, err := baselines.Calibrate(model, cfg.Budgets, refMACs)
	if err != nil {
		return nil, fmt.Errorf("slimmable: %w", err)
	}
	baselines.TrainJoint(model.Net, train, cfg, true)
	return &Result{
		Model:  model,
		Widths: widths,
		Points: baselines.Curve(model.Net, test, cfg, refMACs),
	}, nil
}
