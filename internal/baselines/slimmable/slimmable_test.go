package slimmable

import (
	"testing"

	"steppingnet/internal/baselines"
	"steppingnet/internal/data"
	"steppingnet/internal/models"
)

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(models.LeNet3C1L,
		data.Config{Name: "t", Classes: 4, C: 1, H: 8, W: 8, Train: 96, Test: 48, Seed: 3},
		baselines.Config{Subnets: 3, Budgets: []float64{0.2, 0.5, 0.9}, Epochs: 2, BatchSize: 16, Seed: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || len(res.Widths) != 3 {
		t.Fatalf("points %v widths %v", res.Points, res.Widths)
	}
	prev := int64(0)
	for _, p := range res.Points {
		if p.MACs < prev {
			t.Fatalf("MACs not monotone: %+v", res.Points)
		}
		prev = p.MACs
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("bad accuracy %+v", p)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	_, err := Run(models.LeNet3C1L,
		data.Config{Name: "t", Classes: 4, C: 1, H: 8, W: 8, Train: 16, Test: 16, Seed: 1},
		baselines.Config{Subnets: 2, Budgets: []float64{0.9, 0.5}},
	)
	if err == nil {
		t.Fatal("want config error")
	}
}
