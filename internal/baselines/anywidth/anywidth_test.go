package anywidth

import (
	"testing"

	"steppingnet/internal/baselines"
	"steppingnet/internal/data"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(models.LeNet3C1L,
		data.Config{Name: "t", Classes: 4, C: 1, H: 8, W: 8, Train: 96, Test: 48, Seed: 3},
		baselines.Config{Subnets: 3, Budgets: []float64{0.2, 0.5, 0.9}, Epochs: 2, BatchSize: 16, Seed: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points %v", res.Points)
	}
	// Any-width nets must satisfy the incremental property…
	if err := res.Model.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	// …and therefore support the anytime engine exactly.
	e := infer.NewEngine(res.Model.Net)
	e.Audit = true
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(9), 0, 1)
	e.Reset(x)
	for s := 1; s <= 3; s++ {
		if _, _, err := e.Step(s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnyWidthUsesFewerMACsThanSharedAtSameWidth(t *testing.T) {
	// The triangular mask strictly removes synapses relative to full
	// prefix connectivity, so at equal widths the any-width subnet
	// must not exceed the slimmable one in MACs — the structural
	// price it pays for reuse (paper §II).
	budgets := []float64{0.3, 0.7}
	mo := models.Options{Classes: 4, InC: 1, InH: 8, InW: 8, Subnets: 3, Seed: 2}

	moAW := mo
	moAW.Rule = nn.RuleIncremental
	aw := models.LeNet3C1L(moAW)
	refOpts := mo
	refOpts.Subnets = 1
	ref := models.ReferenceMACs(models.LeNet3C1L, refOpts)
	if _, err := baselines.Calibrate(aw, budgets, ref); err != nil {
		t.Fatal(err)
	}
	// Copy the calibrated widths to a RuleShared twin.
	moSL := mo
	moSL.Rule = nn.RuleShared
	sl := models.LeNet3C1L(moSL)
	for li, mv := range aw.Movable {
		src := mv.OutAssignment()
		dst := sl.Movable[li].OutAssignment()
		for u := 0; u < src.Units(); u++ {
			dst.SetID(u, src.ID(u))
		}
	}
	for s := 1; s <= 2; s++ {
		if aw.Net.MACs(s) > sl.Net.MACs(s) {
			t.Fatalf("subnet %d: anywidth %d > shared %d MACs", s, aw.Net.MACs(s), sl.Net.MACs(s))
		}
	}
}
