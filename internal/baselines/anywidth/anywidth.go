// Package anywidth implements the any-width-network baseline (Vu et
// al., CVPR'20; reference [13] of the paper). Like SteppingNet it
// obeys the incremental property — no synapse runs from a
// larger-subnet unit into a smaller-subnet unit (nn.RuleIncremental)
// — but subnet structures are fixed, regular prefix widths
// ("triangular" masks, paper Fig. 1b) rather than learned
// assignments, and units the widest configuration does not cover
// stay unused.
package anywidth

import (
	"fmt"

	"steppingnet/internal/baselines"
	"steppingnet/internal/data"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
)

// Result is a trained any-width network with its operating curve.
type Result struct {
	Model  *models.Model
	Widths []float64
	Points []baselines.OperatingPoint
}

// Run builds, calibrates, jointly trains and evaluates an any-width
// network on the given workload.
func Run(build models.Builder, dcfg data.Config, cfg baselines.Config) (*Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	train, test, err := data.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	mo := models.Options{
		Classes: dcfg.Classes, InC: dcfg.C, InH: dcfg.H, InW: dcfg.W,
		Subnets: cfg.Subnets + 1, // +1 slot = the "not used" units of Fig. 1b
		Rule:    nn.RuleIncremental, Seed: cfg.Seed,
	}
	model := build(mo)
	refOpts := mo
	refOpts.Subnets = 1
	refMACs := models.ReferenceMACs(build, refOpts)

	widths, err := baselines.Calibrate(model, cfg.Budgets, refMACs)
	if err != nil {
		return nil, fmt.Errorf("anywidth: %w", err)
	}
	if err := model.Net.Validate(); err != nil {
		return nil, fmt.Errorf("anywidth: calibration broke the incremental property: %w", err)
	}
	baselines.TrainJoint(model.Net, train, cfg, false)
	return &Result{
		Model:  model,
		Widths: widths,
		Points: baselines.Curve(model.Net, test, cfg, refMACs),
	}, nil
}
