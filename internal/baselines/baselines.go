// Package baselines contains the machinery shared by the two
// state-of-the-art comparators evaluated in the paper's Fig. 6: the
// slimmable network (Yu et al., ICLR'19) and the any-width network
// (Vu et al., CVPR'20). Both carve nested subnets out of one weight
// store by *regular prefix widths* rather than learned assignments;
// the packages slimmable and anywidth build on the width calibration
// and joint-training loops here.
package baselines

import (
	"fmt"

	"steppingnet/internal/data"
	"steppingnet/internal/loss"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/optim"
	"steppingnet/internal/tensor"
)

// Config parameterizes a baseline run.
type Config struct {
	// Subnets is the number of operating points (the paper plots 5).
	Subnets int
	// Budgets are the target MAC fractions of the reference network,
	// ascending, one per subnet.
	Budgets []float64
	Epochs  int

	BatchSize int
	LR        float64
	Momentum  float64
	Seed      uint64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Subnets <= 0 {
		c.Subnets = 5
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Momentum <= 0 {
		c.Momentum = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Budgets) != c.Subnets {
		return fmt.Errorf("baselines: %d budgets for %d subnets", len(c.Budgets), c.Subnets)
	}
	prev := 0.0
	for i, b := range c.Budgets {
		if b <= prev {
			return fmt.Errorf("baselines: budgets must ascend; budget[%d]=%g after %g", i, b, prev)
		}
		prev = b
	}
	return nil
}

// OperatingPoint is one (MACs, accuracy) pair of a baseline curve.
type OperatingPoint struct {
	Subnet   int
	MACs     int64
	MACFrac  float64
	Accuracy float64
}

// Calibrate sets nested prefix-width assignments on the model so
// subnet s's MAC count approximates budgets[s-1]·refMACs. The model
// must have been built with Subnets = len(budgets)+1: units that no
// operating point uses are parked in the extra largest "subnet",
// mirroring the any-width paper's unused neurons (paper Fig. 1b).
// It returns the achieved per-subnet widths fractions.
func Calibrate(model *models.Model, budgets []float64, refMACs int64) ([]float64, error) {
	n := len(budgets)
	if len(model.Movable) == 0 {
		return nil, fmt.Errorf("baselines: model has no movable layers")
	}
	if model.Movable[0].OutAssignment().Subnets() < n+1 {
		return nil, fmt.Errorf("baselines: model needs %d subnet slots (N+1), has %d",
			n+1, model.Movable[0].OutAssignment().Subnets())
	}
	// Park everything beyond the largest operating point.
	park := n + 1
	for _, m := range model.Movable {
		a := m.OutAssignment()
		for u := 0; u < a.Units(); u++ {
			a.SetID(u, park)
		}
	}
	widths := make([]float64, n)
	// Assign prefixes from the largest subnet down so nesting holds:
	// a unit in subnet s is automatically in every larger subnet.
	for s := n; s >= 1; s-- {
		target := int64(budgets[s-1] * float64(refMACs))
		frac := searchWidth(model, s, target)
		widths[s-1] = frac
		applyPrefix(model, s, frac)
	}
	return widths, nil
}

// applyPrefix moves the first ceil(frac·units) units of every layer
// into subnet ≤ s (only lowering ids, preserving nesting).
func applyPrefix(model *models.Model, s int, frac float64) {
	for _, m := range model.Movable {
		a := m.OutAssignment()
		count := prefixCount(a.Units(), frac)
		for u := 0; u < count; u++ {
			if a.ID(u) > s {
				a.SetID(u, s)
			}
		}
	}
}

func prefixCount(units int, frac float64) int {
	c := int(frac*float64(units) + 0.5)
	if c < 1 {
		c = 1
	}
	if c > units {
		c = units
	}
	return c
}

// searchWidth binary-searches the uniform width fraction whose
// resulting subnet-s MACs best match the target, given the (already
// applied) assignments of larger subnets.
func searchWidth(model *models.Model, s int, target int64) float64 {
	// Snapshot assignments so probes are non-destructive.
	saved := make([][]int, len(model.Movable))
	for i, m := range model.Movable {
		saved[i] = append([]int(nil), m.OutAssignment().IDs()...)
	}
	restore := func() {
		for i, m := range model.Movable {
			a := m.OutAssignment()
			for u, id := range saved[i] {
				a.SetID(u, id)
			}
		}
	}
	macsAt := func(frac float64) int64 {
		applyPrefix(model, s, frac)
		macs := model.Net.MACs(s)
		restore()
		return macs
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if macsAt(mid) > target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// TrainJoint trains all operating points jointly: every batch is run
// through each subnet in ascending order (the slimmable paper's
// N-mode training; the any-width network trains the same way over
// its triangular masks). useModes selects per-mode BatchNorm
// statistics (slimmable only).
func TrainJoint(net *nn.Network, train *data.Dataset, cfg Config, useModes bool) {
	cfg = cfg.WithDefaults()
	rng := tensor.NewRNG(cfg.Seed ^ 0xB45E)
	opt := optim.NewSGD(cfg.LR, cfg.Momentum, 1e-4)
	pool := tensor.NewPool()
	for e := 0; e < cfg.Epochs; e++ {
		train.Batches(rng, cfg.BatchSize, func(x *tensor.Tensor, y []int) {
			for s := 1; s <= cfg.Subnets; s++ {
				ctx := &nn.Context{Subnet: s, Train: true, Scratch: pool}
				if useModes {
					ctx.Mode = s
				}
				logits := net.Forward(x, ctx)
				_, grad := loss.CrossEntropy(logits, y)
				pool.Put(net.Backward(grad, ctx))
				pool.Put(grad)
				opt.Step(net.Params())
			}
		})
	}
}

// Curve evaluates each operating point on the test set.
func Curve(net *nn.Network, test *data.Dataset, cfg Config, refMACs int64) []OperatingPoint {
	cfg = cfg.WithDefaults()
	pts := make([]OperatingPoint, 0, cfg.Subnets)
	for s := 1; s <= cfg.Subnets; s++ {
		macs := net.MACs(s)
		acc := evaluateMode(net, test, s, cfg.BatchSize)
		pts = append(pts, OperatingPoint{
			Subnet: s, MACs: macs,
			MACFrac:  float64(macs) / float64(refMACs),
			Accuracy: acc,
		})
	}
	return pts
}

// evaluateMode mirrors core.Evaluate but with Mode set for
// switchable BatchNorm; duplicated here to avoid a dependency cycle
// if core ever grows baseline hooks.
func evaluateMode(net *nn.Network, ds *data.Dataset, s, batchSize int) float64 {
	pool := tensor.NewPool()
	ctx := &nn.Context{Subnet: s, Mode: s, Scratch: pool}
	correct, total := 0, 0
	for start := 0; start < ds.Len(); start += batchSize {
		end := start + batchSize
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, y := ds.Batch(idx)
		logits := net.Forward(x, ctx)
		correct += int(loss.Accuracy(logits, y)*float64(len(y)) + 0.5)
		total += len(y)
		pool.Put(logits)
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
