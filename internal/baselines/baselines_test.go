package baselines

import (
	"testing"

	"steppingnet/internal/models"
	"steppingnet/internal/nn"
)

func buildParked(t *testing.T, n int, rule nn.MaskRule) (*models.Model, int64) {
	t.Helper()
	mo := models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8,
		Subnets: n + 1, Rule: rule, Seed: 2,
	}
	m := models.LeNet3C1L(mo)
	mo.Subnets = 1
	ref := models.ReferenceMACs(models.LeNet3C1L, mo)
	return m, ref
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Subnets != 5 || len(c.Budgets) != 5 {
		t.Fatalf("defaults %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Budgets = []float64{0.5, 0.4, 0.6, 0.8, 1.0}
	if err := c.Validate(); err == nil {
		t.Fatal("want descending-budget error")
	}
}

func TestCalibrateHitsBudgetsApproximately(t *testing.T) {
	budgets := []float64{0.2, 0.5, 0.9}
	m, ref := buildParked(t, 3, nn.RuleIncremental)
	widths, err := Calibrate(m, budgets, ref)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 3; s++ {
		frac := float64(m.Net.MACs(s)) / float64(ref)
		if frac > budgets[s-1]*1.02+0.02 {
			t.Fatalf("subnet %d overshoots: %.3f > %.3f", s, frac, budgets[s-1])
		}
		// With discrete unit counts we can undershoot, but not by
		// an order of magnitude.
		if frac < budgets[s-1]*0.3 {
			t.Fatalf("subnet %d far under budget: %.3f vs %.3f", s, frac, budgets[s-1])
		}
	}
	// Widths must be non-decreasing.
	for i := 1; i < len(widths); i++ {
		if widths[i] < widths[i-1] {
			t.Fatalf("widths not nested: %v", widths)
		}
	}
}

func TestCalibrateNestingInvariant(t *testing.T) {
	m, ref := buildParked(t, 3, nn.RuleIncremental)
	if _, err := Calibrate(m, []float64{0.2, 0.5, 0.9}, ref); err != nil {
		t.Fatal(err)
	}
	// Prefix property: within every layer, assignments must be
	// non-decreasing along the unit index.
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			if a.ID(u) < a.ID(u-1) {
				t.Fatalf("layer %s: ids not prefix-ordered at unit %d: %v",
					mv.Name(), u, a.IDs())
			}
		}
	}
	if err := m.Net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRejectsMissingParkSlot(t *testing.T) {
	mo := models.Options{Classes: 4, InC: 1, InH: 8, InW: 8, Subnets: 2, Rule: nn.RuleIncremental}
	m := models.LeNet3C1L(mo)
	if _, err := Calibrate(m, []float64{0.3, 0.6}, 1000); err == nil {
		t.Fatal("want error when no park slot exists")
	}
}

func TestCalibrateMACsMonotoneAcrossSubnets(t *testing.T) {
	m, ref := buildParked(t, 4, nn.RuleShared)
	if _, err := Calibrate(m, []float64{0.2, 0.4, 0.6, 0.9}, ref); err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for s := 1; s <= 4; s++ {
		macs := m.Net.MACs(s)
		if macs < prev {
			t.Fatalf("MACs not monotone at %d", s)
		}
		prev = macs
	}
}
